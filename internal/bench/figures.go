package bench

import (
	"fmt"

	"gat/internal/jacobi"
	"gat/internal/machine"
)

var weakBaseLarge = [3]int{1536, 1536, 1536}
var weakBaseSmall = [3]int{192, 192, 192}
var strongGlobal = [3]int{3072, 3072, 3072}
var fusionGlobal = [3]int{768, 768, 768}

// fig6a: weak scaling of Charm-H with ODF-4, before vs after the
// §III-C synchronization/stream optimizations.
func fig6a(opt Options) Figure {
	return fig6(opt, true)
}

// fig6b: the strong-scaling companion of fig6a.
func fig6b(opt Options) Figure {
	return fig6(opt, false)
}

func fig6(opt Options, weak bool) Figure {
	id, title := "fig6a", "Weak scaling 1536^3/node: Charm-H before vs after optimizations"
	lo := 1
	if !weak {
		id, title = "fig6b", "Strong scaling 3072^3: Charm-H before vs after optimizations"
		lo = 8
	}
	before := Series{Name: "Before"}
	after := Series{Name: "After"}
	for _, n := range nodeSweep(lo, 512, opt) {
		global := strongGlobal
		if weak {
			global = weakGlobal(weakBaseLarge, n)
		}
		cfg := opt.cfg(global)
		b := jacobi.RunCharm(machine.New(machine.Summit(n)), cfg, jacobi.CharmOpts{ODF: 4})
		a := jacobi.RunCharm(machine.New(machine.Summit(n)), cfg, jacobi.CharmOpts{ODF: 4}.Optimized())
		before.Points = append(before.Points, Point{Nodes: n, Value: ms(b.TimePerIter)})
		after.Points = append(after.Points, Point{Nodes: n, Value: ms(a.TimePerIter)})
		opt.progress("%s nodes=%d before=%v after=%v", id, n, b.TimePerIter, a.TimePerIter)
	}
	return Figure{ID: id, Title: title, XLabel: "nodes", YLabel: "time/iter (ms)",
		Series: []Series{before, after}}
}

// fourVariants runs MPI-H, MPI-D, Charm-H (best ODF), Charm-D (best
// ODF) at one node count, the comparison repeated in every panel of
// Fig 7.
func fourVariants(opt Options, cfg jacobi.Config, n int, inUS bool) []Point {
	conv := ms
	if inUS {
		conv = us
	}
	mpiH := jacobi.RunMPI(machine.New(machine.Summit(n)), cfg, jacobi.MPIOpts{})
	mpiD := jacobi.RunMPI(machine.New(machine.Summit(n)), cfg, jacobi.MPIOpts{Device: true})
	odfs := odfCandidates(n)
	chH, odfH := bestODF(cfg, n, jacobi.CharmOpts{}.Optimized(), odfs)
	chD, odfD := bestODF(cfg, n, jacobi.CharmOpts{GPUAware: true}.Optimized(), odfs)
	opt.progress("nodes=%d mpiH=%v mpiD=%v charmH=%v(odf%d) charmD=%v(odf%d)",
		n, mpiH.TimePerIter, mpiD.TimePerIter, chH.TimePerIter, odfH, chD.TimePerIter, odfD)
	return []Point{
		{Nodes: n, Value: conv(mpiH.TimePerIter)},
		{Nodes: n, Value: conv(mpiD.TimePerIter)},
		{Nodes: n, Value: conv(chH.TimePerIter), Meta: fmt.Sprintf("ODF-%d", odfH)},
		{Nodes: n, Value: conv(chD.TimePerIter), Meta: fmt.Sprintf("ODF-%d", odfD)},
	}
}

func variantFigure(opt Options, id, title, ylabel string, lo int, global func(int) [3]int, inUS bool) Figure {
	series := []Series{{Name: "MPI-H"}, {Name: "MPI-D"}, {Name: "Charm-H"}, {Name: "Charm-D"}}
	for _, n := range nodeSweep(lo, 512, opt) {
		pts := fourVariants(opt, opt.cfg(global(n)), n, inUS)
		for i := range series {
			series[i].Points = append(series[i].Points, pts[i])
		}
	}
	return Figure{ID: id, Title: title, XLabel: "nodes", YLabel: ylabel, Series: series}
}

// fig7a: weak scaling with the large base problem (1536^3 per node).
func fig7a(opt Options) Figure {
	return variantFigure(opt, "fig7a", "Weak scaling 1536^3/node: MPI-H, MPI-D, Charm-H, Charm-D",
		"time/iter (ms)", 1, func(n int) [3]int { return weakGlobal(weakBaseLarge, n) }, false)
}

// fig7b: weak scaling with the small base problem (192^3 per node),
// reported in microseconds.
func fig7b(opt Options) Figure {
	return variantFigure(opt, "fig7b", "Weak scaling 192^3/node: MPI-H, MPI-D, Charm-H, Charm-D",
		"time/iter (us)", 1, func(n int) [3]int { return weakGlobal(weakBaseSmall, n) }, true)
}

// fig7c: strong scaling of the fixed 3072^3 grid.
func fig7c(opt Options) Figure {
	return variantFigure(opt, "fig7c", "Strong scaling 3072^3: MPI-H, MPI-D, Charm-H, Charm-D",
		"time/iter (ms)", 8, func(int) [3]int { return strongGlobal }, false)
}

// fig8 runs the kernel-fusion comparison: Charm-D on a 768^3 grid
// scaled to 128 nodes, at a fixed ODF.
func fig8(opt Options, id string, odf int) Figure {
	strategies := []struct {
		name string
		f    jacobi.Fusion
	}{
		{"Baseline", jacobi.FusionNone},
		{"StrategyA", jacobi.FusionA},
		{"StrategyB", jacobi.FusionB},
		{"StrategyC", jacobi.FusionC},
	}
	series := make([]Series, len(strategies))
	for i, s := range strategies {
		series[i].Name = s.name
	}
	for _, n := range nodeSweep(1, 128, opt) {
		cfg := opt.cfg(fusionGlobal)
		for i, s := range strategies {
			r := jacobi.RunCharm(machine.New(machine.Summit(n)), cfg,
				jacobi.CharmOpts{ODF: odf, GPUAware: true, Fusion: s.f}.Optimized())
			series[i].Points = append(series[i].Points, Point{Nodes: n, Value: ms(r.TimePerIter)})
			opt.progress("%s nodes=%d fusion=%s t=%v", id, n, s.f, r.TimePerIter)
		}
	}
	return Figure{ID: id, Title: fmt.Sprintf("Kernel fusion, 768^3, ODF-%d", odf),
		XLabel: "nodes", YLabel: "time/iter (ms)", Series: series}
}

func fig8a(opt Options) Figure { return fig8(opt, "fig8a", 1) }
func fig8b(opt Options) Figure { return fig8(opt, "fig8b", 8) }

// fig9 measures the speedup from CUDA graphs under each fusion
// strategy: speedup = t(no graphs) / t(graphs).
func fig9(opt Options, id string, odf int) Figure {
	strategies := []struct {
		name string
		f    jacobi.Fusion
	}{
		{"NoFusion", jacobi.FusionNone},
		{"FusionA", jacobi.FusionA},
		{"FusionB", jacobi.FusionB},
		{"FusionC", jacobi.FusionC},
	}
	series := make([]Series, len(strategies))
	for i, s := range strategies {
		series[i].Name = s.name
	}
	for _, n := range nodeSweep(1, 128, opt) {
		cfg := opt.cfg(fusionGlobal)
		for i, s := range strategies {
			base := jacobi.RunCharm(machine.New(machine.Summit(n)), cfg,
				jacobi.CharmOpts{ODF: odf, GPUAware: true, Fusion: s.f}.Optimized())
			graphed := jacobi.RunCharm(machine.New(machine.Summit(n)), cfg,
				jacobi.CharmOpts{ODF: odf, GPUAware: true, Fusion: s.f, Graphs: true}.Optimized())
			speedup := float64(base.TimePerIter) / float64(graphed.TimePerIter)
			series[i].Points = append(series[i].Points, Point{Nodes: n, Value: speedup})
			opt.progress("%s nodes=%d fusion=%s base=%v graphed=%v speedup=%.2f",
				id, n, s.f, base.TimePerIter, graphed.TimePerIter, speedup)
		}
	}
	return Figure{ID: id, Title: fmt.Sprintf("CUDA-graph speedup vs fusion, 768^3, ODF-%d", odf),
		XLabel: "nodes", YLabel: "speedup (x)", Series: series}
}

func fig9a(opt Options) Figure { return fig9(opt, "fig9a", 1) }
func fig9b(opt Options) Figure { return fig9(opt, "fig9b", 8) }
