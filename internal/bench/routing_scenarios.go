package bench

import (
	"gat/internal/machine"
	"gat/internal/netsim"
	"gat/internal/sim"
)

// Routing-policy scenarios: the congestion studies of the taper sweeps
// with route choice itself as the experiment axis. All run on the
// perlmutter-dragonfly profile at three router groups (48 nodes, 16
// per group) — the smallest machine where a non-minimal route has an
// intermediate group to detour through — and sweep the taper ratio, so
// each figure reads "does this policy move the congestion point". The
// app-backed scenario exercises a real halo exchange; the two
// traffic-pattern scenarios drive the network directly (app-less, like
// jacobi-exascale) with patterns chosen to stress routing: an incast
// hotspot and an adversarial rank placement that aligns every flow
// onto the same inter-group links.

func registerRoutingScenarios() {
	RegisterScenario(jacobiAdaptiveVsMinimalScenario())
	RegisterScenario(hotspotScenario())
	RegisterScenario(jacobiAdversarialMappingScenario())
}

// routedAt returns the machine hook setting the fabric taper and
// routing policy on the cell's base profile (which must already carry
// a fabric, as the dragonfly profiles do — the uplink count and
// topology stay the profile's own).
func routedAt(taper float64, routing string) func(*machine.Config) {
	return func(cfg *machine.Config) {
		cfg.Fabric.Taper = taper
		cfg.Fabric.Routing = routing
	}
}

// routedPoint is the app-less analogue of congested: it stamps the
// machine's own congestion summary and routing policy onto the point.
func routedPoint(m *machine.Machine, p Point) Point {
	p.MaxLinkUtil, p.MeanLinkUtil = m.Net.LinkUtilization()
	p.Routing = m.Net.RoutingName()
	return p
}

// runWaves drives a synthetic flow set over the machine's network:
// each wave sends bytes along every flow, and the next wave starts
// once the previous one has fully arrived — so later waves see the
// occupancy (and, under adaptive routing, the penalty state) earlier
// waves left behind. Returns the simulated completion time.
func runWaves(m *machine.Machine, flows [][2]int, bytes int64, waves int) sim.Time {
	e := m.Eng
	ready := sim.FiredSignal()
	for w := 0; w < waves; w++ {
		arrivals := make([]*sim.Signal, 0, len(flows))
		for _, f := range flows {
			arrivals = append(arrivals, m.Net.Transfer(f[0], f[1], bytes, ready))
		}
		ready = sim.AllOf(e, arrivals...)
	}
	e.Run()
	return e.Now()
}

// jacobiAdaptiveVsMinimalScenario is the headline routing study: the
// Jacobi3D halo exchange under the existing taper axis, minimal vs
// adaptive routing on an otherwise identical dragonfly. Past taper 4
// the flow-hashed minimal route leaves some global links saturated
// while their parallels idle; the adaptive router resolves each claim
// to the least-loaded link and detours when backlog exceeds the extra
// wire cost, so its max_link_util column reads lower at equal taper.
func jacobiAdaptiveVsMinimalScenario() *Scenario {
	cell := func(routing string) CellFn {
		return func(c *Cell) Point {
			m := c.NewMachineWith(routedAt(float64(c.X), routing))
			r := c.RunOn(m, "mpi-d", c.Defaults())
			c.Progress("t=%v net=%.0f%% routing=%s", r.TimePerIter, 100*r.MaxLinkUtil, r.Routing)
			return congested(Point{Nodes: c.X, Value: us(r.TimePerIter)}, r)
		}
	}
	return &Scenario{
		Name:  "jacobi-adaptive-vs-minimal",
		Title: "Jacobi3D halo exchange vs dragonfly taper, minimal vs adaptive routing",
		App:   "jacobi3d", Machine: "perlmutter-dragonfly", Kind: KindExtra,
		// Version covers the cell-embedded routing/taper parameters.
		Version: 1,
		XLabel:  "taper", YLabel: "time/iter (us)",
		Axis: taperAxis(48),
		Series: []SeriesDef{
			{"Minimal", cell(netsim.RoutingMinimal)},
			{"Adaptive", cell(netsim.RoutingAdaptive)},
		},
	}
}

// hotspotFlows aims every other node at node 0 — the incast pattern.
func hotspotFlows(nodes int) [][2]int {
	var flows [][2]int
	for i := 1; i < nodes; i++ {
		flows = append(flows, [2]int{i, 0})
	}
	return flows
}

// hotspotScenario drives pure incast traffic at node 0 under each
// routing policy. No policy can widen the victim group's ingress
// aggregate, but they differ in how they use its parallel links:
// minimal's flow hash can collapse several heavy flows onto one link,
// adaptive balances them by occupancy, and Valiant pays extra global
// hops for no incast benefit — three distinct (completion time,
// max_link_util) signatures over the same taper axis.
func hotspotScenario() *Scenario {
	cell := func(routing string) CellFn {
		return func(c *Cell) Point {
			m := c.NewMachineWith(routedAt(float64(c.X), routing))
			total := runWaves(m, hotspotFlows(c.Nodes), 4<<20, 4)
			p := routedPoint(m, Point{Nodes: c.X, Value: ms(total)})
			c.Progress("t=%v net=%.0f%% routing=%s", total, 100*p.MaxLinkUtil, p.Routing)
			return p
		}
	}
	return &Scenario{
		Name:  "hotspot",
		Title: "Incast hotspot at node 0 vs dragonfly taper, by routing policy",
		App:   "", Machine: "perlmutter-dragonfly", Kind: KindExtra,
		// Version covers the cell-embedded traffic shape (4 MB x 4
		// waves) and routing parameters.
		Version: 1,
		XLabel:  "taper", YLabel: "completion (ms)",
		Axis: taperAxis(48),
		Series: []SeriesDef{
			{"Minimal", cell(netsim.RoutingMinimal)},
			{"Valiant", cell(netsim.RoutingValiant)},
			{"Adaptive", cell(netsim.RoutingAdaptive)},
		},
	}
}

// adversarialFlows places every rank's halo partner exactly one router
// group away: node i talks to node (i + groupSize) mod nodes. Every
// flow is cross-group, and all of group g's egress traffic aims at
// group g+1 — the worst case for minimal routing, which must carry
// each group's whole plane over one group-pair's links while every
// other global link idles.
func adversarialFlows(nodes, groupSize int) [][2]int {
	var flows [][2]int
	for i := 0; i < nodes; i++ {
		flows = append(flows, [2]int{i, (i + groupSize) % nodes})
	}
	return flows
}

// jacobiAdversarialMappingScenario is the adversarial rank-placement
// study: the halo-plane pattern of a jacobi decomposition mapped so
// that every exchange crosses to the next router group. Minimal
// routing concentrates each group's full plane onto its g→g+1 links;
// Valiant spreads the same traffic over every group uniformly at the
// cost of doubled hops; adaptive detours only while the direct links
// are backlogged.
func jacobiAdversarialMappingScenario() *Scenario {
	cell := func(routing string) CellFn {
		return func(c *Cell) Point {
			m := c.NewMachineWith(routedAt(float64(c.X), routing))
			podSize := m.Cfg.Net.PodSize
			total := runWaves(m, adversarialFlows(c.Nodes, podSize), 4<<20, 4)
			p := routedPoint(m, Point{Nodes: c.X, Value: ms(total)})
			c.Progress("t=%v net=%.0f%% routing=%s", total, 100*p.MaxLinkUtil, p.Routing)
			return p
		}
	}
	return &Scenario{
		Name:  "jacobi-adversarial-mapping",
		Title: "Adversarial halo mapping (partner = next group) vs taper, by routing policy",
		App:   "", Machine: "perlmutter-dragonfly", Kind: KindExtra,
		// Version covers the cell-embedded traffic shape and routing
		// parameters.
		Version: 1,
		XLabel:  "taper", YLabel: "completion (ms)",
		Axis: taperAxis(48),
		Series: []SeriesDef{
			{"Minimal", cell(netsim.RoutingMinimal)},
			{"Valiant", cell(netsim.RoutingValiant)},
			{"Adaptive", cell(netsim.RoutingAdaptive)},
		},
	}
}
