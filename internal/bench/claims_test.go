package bench

import (
	"strings"
	"testing"
)

// TestClaimsAtReducedScale is the integration gate: every qualitative
// claim of the paper must hold on the simulator at CI-friendly scale.
// The full-scale verification is recorded in EXPERIMENTS.md.
func TestClaimsAtReducedScale(t *testing.T) {
	if testing.Short() {
		t.Skip("claims take ~10s")
	}
	var sb strings.Builder
	opt := Options{MaxNodes: 16, Iters: 5, Warmup: 2}
	if !CheckClaims(opt, &sb) {
		t.Fatalf("claims failed:\n%s", sb.String())
	}
	for _, id := range []string{"C1", "C2", "C3", "C4", "C5", "C6", "C7"} {
		if !strings.Contains(sb.String(), id+"   PASS") {
			t.Fatalf("claim %s missing or failed:\n%s", id, sb.String())
		}
	}
}

func TestClaimListComplete(t *testing.T) {
	cs := Claims()
	if len(cs) != 7 {
		t.Fatalf("want 7 claims, got %d", len(cs))
	}
	seen := map[string]bool{}
	for _, c := range cs {
		if c.ID == "" || c.Text == "" || c.Run == nil {
			t.Fatalf("incomplete claim %+v", c)
		}
		if seen[c.ID] {
			t.Fatalf("duplicate claim id %s", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestScaleNodes(t *testing.T) {
	if n := scaleNodes(512, Options{MaxNodes: 64}); n != 64 {
		t.Fatalf("scaleNodes = %d, want 64", n)
	}
	if n := scaleNodes(512, Options{}); n != 512 {
		t.Fatalf("uncapped scaleNodes = %d, want 512", n)
	}
	if n := scaleNodes(8, Options{MaxNodes: 3}); n != 2 {
		t.Fatalf("scaleNodes = %d, want 2", n)
	}
}
