package bench

import (
	"fmt"
	"hash/fnv"

	"gat/internal/app"
)

// RunSpec is one self-contained simulation point of a figure: a single
// (series, x) cell, carrying everything needed to reproduce it in
// isolation. Every spec builds its own machine and engine when
// executed, so any subset of a plan's specs can run concurrently, in
// any order, and still produce bit-identical points.
type RunSpec struct {
	// FigID is the owning figure and Series the line within it.
	FigID  string
	Series string
	// seriesIdx is Series' position in the plan skeleton.
	seriesIdx int
	// X is the x coordinate: a node count for the scaling figures, an
	// ODF for abl-odf, log2(bytes) for abl-chanapi.
	X int
	// Nodes is the simulated machine size (== X for scaling figures).
	Nodes int
	// Warmup and Iters are the resolved per-run iteration counts.
	Warmup, Iters int
	// Seed is derived from (FigID, Series, X) and seeds the run's
	// network jitter RNG (active when Options.Jitter > 0), so
	// re-running a spec — alone or in a full sweep — reproduces the
	// same simulation.
	Seed uint64
	// Scenario, App and Machine name the resolved experiment
	// composition: the registered scenario (== FigID for registered
	// plans), the application (empty for machine-level scenarios) and
	// the machine profile the runs build.
	Scenario, App, Machine string
	// Jitter is the resolved network-jitter fraction the run simulates
	// under (Options.Jitter at plan time). It is a fingerprint input:
	// the same spec at a different jitter is a different result.
	Jitter float64

	// appID, machineID and scenarioID are the versioned identity
	// strings (app.Identity, machine.Profile.Identity,
	// Scenario.Identity) behind App, Machine and Scenario; they enter
	// the fingerprint so bumping an app, profile or scenario version
	// invalidates its cached runs without touching the engine salt.
	// scenarioID equals Scenario while every version is 0, preserving
	// pre-versioned keys.
	appID, machineID, scenarioID string

	run func() Point
}

// Execute runs the simulation(s) behind the spec on a private engine
// and returns the resulting figure point.
func (s RunSpec) Execute() Point {
	executions.Add(1)
	return s.run()
}

// Name returns a stable human-readable identifier for progress lines.
func (s RunSpec) Name() string {
	return fmt.Sprintf("%s/%s@%d", s.FigID, s.Series, s.X)
}

// Plan is a figure decomposed into independent runs: the skeleton
// carries the metadata and named (empty) series, Specs the flat run
// list in deterministic order.
type Plan struct {
	Skeleton Figure
	Specs    []RunSpec
}

// Assemble fills the skeleton's series from results, where results[i]
// is the point produced by Specs[i]. Appending in spec order keeps the
// output byte-identical no matter how the runs were scheduled.
func (p Plan) Assemble(results []Point) Figure {
	fig := p.Skeleton
	series := make([]Series, len(fig.Series))
	for i, s := range fig.Series {
		series[i] = Series{Name: s.Name}
	}
	for i, spec := range p.Specs {
		series[spec.seriesIdx].Points = append(series[spec.seriesIdx].Points, results[i])
	}
	fig.Series = series
	return fig
}

// Run executes the plan serially in spec order. It is the reference
// path: the parallel orchestrator in internal/sweep must match its
// output byte for byte.
func (p Plan) Run() Figure {
	results := make([]Point, len(p.Specs))
	for i, s := range p.Specs {
		results[i] = s.Execute()
	}
	return p.Assemble(results)
}

// specSeed derives the deterministic per-run seed.
func specSeed(figID, series string, x int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d", figID, series, x)
	return h.Sum64()
}

// planBuilder accumulates a figure plan. Series must all be declared
// up front so the skeleton's column order is fixed before any spec is
// added.
type planBuilder struct {
	fig   Figure
	opt   Options
	specs []RunSpec
	// scenario/app/machine annotate every spec with the resolved
	// experiment composition (set by Scenario.Plan);
	// scenarioID/appID/machineID are the matching versioned identity
	// strings; appRef is the resolved application, consulted for
	// default iteration counts.
	scenario, app, machine       string
	appID, machineID, scenarioID string
	appRef                       app.App
}

func newPlan(opt Options, id, title, xlabel, ylabel string, seriesNames ...string) *planBuilder {
	series := make([]Series, len(seriesNames))
	for i, n := range seriesNames {
		series[i] = Series{Name: n}
	}
	return &planBuilder{
		opt: opt,
		fig: Figure{ID: id, Title: title, XLabel: xlabel, YLabel: ylabel, Series: series},
	}
}

// add appends one run for series index si at x coordinate x on a
// nodes-node machine. run receives the spec (for its seed) and returns
// the measured point.
func (b *planBuilder) add(si, x, nodes int, run func(RunSpec) Point) {
	// Resolved per-run iteration counts: sweep options win, then the
	// app's defaults (zero for app-less scenarios, which run none).
	warmup, iters := b.opt.Warmup, b.opt.Iters
	if b.appRef != nil {
		d := b.appRef.Defaults(nodes)
		if warmup == 0 {
			warmup = d.Warmup
		}
		if iters == 0 {
			iters = d.Iters
		}
	}
	spec := RunSpec{
		FigID:      b.fig.ID,
		Series:     b.fig.Series[si].Name,
		seriesIdx:  si,
		X:          x,
		Nodes:      nodes,
		Warmup:     warmup,
		Iters:      iters,
		Seed:       specSeed(b.fig.ID, b.fig.Series[si].Name, x),
		Scenario:   b.scenario,
		App:        b.app,
		Machine:    b.machine,
		Jitter:     b.opt.Jitter,
		appID:      b.appID,
		machineID:  b.machineID,
		scenarioID: b.scenarioID,
	}
	spec.run = func() Point { return run(spec) }
	b.specs = append(b.specs, spec)
}

func (b *planBuilder) plan() Plan {
	return Plan{Skeleton: b.fig, Specs: b.specs}
}
