package bench

import "testing"

func fpOpt() Options { return Options{MaxNodes: 2, Warmup: 1, Iters: 2} }

func planSpecs(t *testing.T, id string, opt Options, ov Overrides) []RunSpec {
	t.Helper()
	p, err := PlanScenario(id, opt, ov)
	if err != nil {
		t.Fatal(err)
	}
	return p.Specs
}

// TestFingerprintGolden pins the content addresses of representative
// specs. These values are the on-disk cache keys: a diff here means
// every existing run cache is invalidated. That is the correct outcome
// when simulation semantics changed (and the engine salt or an
// app/machine version was bumped), and a bug in the canonicalization
// otherwise — update the constants only in the first case.
func TestFingerprintGolden(t *testing.T) {
	cases := []struct {
		id   string
		ov   Overrides
		want string // fingerprint of the plan's first spec
	}{
		{"fig6a", Overrides{}, "f6ce17b23c93d7ef1bff2fe98c341dfe"},
		{"abl-chanapi", Overrides{}, "8d6fd6f70ea6a78c5ce1a58f46930201"},
		{"fig6a", Overrides{Machine: "perlmutter"}, "145066224a3e6f9fef4e1e1564e6121d"},
	}
	for _, c := range cases {
		specs := planSpecs(t, c.id, fpOpt(), c.ov)
		if got := specs[0].Fingerprint(); got != c.want {
			t.Errorf("%s (ov %+v): fingerprint = %s, want %s", c.id, c.ov, got, c.want)
		}
	}
}

// TestFingerprintStableAndDistinct checks the two sides of content
// addressing: recompiling the same plan reproduces the same keys, and
// every spec of a multi-figure sweep gets a distinct key.
func TestFingerprintStableAndDistinct(t *testing.T) {
	seen := map[string]string{}
	for _, id := range []string{"fig6a", "fig7b", "abl-chanapi"} {
		a := planSpecs(t, id, fpOpt(), Overrides{})
		b := planSpecs(t, id, fpOpt(), Overrides{})
		for i := range a {
			fa, fb := a[i].Fingerprint(), b[i].Fingerprint()
			if fa != fb {
				t.Fatalf("%s: fingerprint not reproducible: %s vs %s", a[i].Name(), fa, fb)
			}
			if len(fa) != 32 {
				t.Fatalf("%s: fingerprint %q is not 32 hex chars", a[i].Name(), fa)
			}
			if prev, dup := seen[fa]; dup {
				t.Fatalf("fingerprint collision: %s and %s both map to %s", prev, a[i].Name(), fa)
			}
			seen[fa] = a[i].Name()
		}
	}
}

// TestFingerprintSensitivity asserts that each cache-relevant input
// moves the key: jitter, machine override, and iteration counts.
func TestFingerprintSensitivity(t *testing.T) {
	base := planSpecs(t, "fig6a", fpOpt(), Overrides{})[0].Fingerprint()

	jopt := fpOpt()
	jopt.Jitter = 0.05
	if got := planSpecs(t, "fig6a", jopt, Overrides{})[0].Fingerprint(); got == base {
		t.Error("jitter change did not change the fingerprint")
	}
	if got := planSpecs(t, "fig6a", fpOpt(), Overrides{Machine: "perlmutter"})[0].Fingerprint(); got == base {
		t.Error("machine override did not change the fingerprint")
	}
	iopt := fpOpt()
	iopt.Iters = 3
	if got := planSpecs(t, "fig6a", iopt, Overrides{})[0].Fingerprint(); got == base {
		t.Error("iteration count change did not change the fingerprint")
	}
}

// TestFingerprintEngineSaltInvalidates proves the engine-version salt
// is live: the same spec under a bumped salt maps to a different key,
// so semantic engine changes orphan (rather than poison) old caches.
func TestFingerprintEngineSaltInvalidates(t *testing.T) {
	spec := planSpecs(t, "fig6a", fpOpt(), Overrides{})[0]
	a := spec.fingerprint("gat-engine-1")
	b := spec.fingerprint("gat-engine-2")
	if a == b {
		t.Fatal("engine salt bump did not change the fingerprint")
	}
	if spec.Fingerprint() != a {
		t.Fatal("Fingerprint() does not use the current sim.EngineVersion salt")
	}
}

// TestExecutionsCounter checks the run-counter hook: executing a spec
// bumps the process-wide counter by exactly one.
func TestExecutionsCounter(t *testing.T) {
	spec := planSpecs(t, "fig6a", fpOpt(), Overrides{})[0]
	before := Executions()
	spec.Execute()
	if got := Executions() - before; got != 1 {
		t.Fatalf("Executions advanced by %d, want 1", got)
	}
}
