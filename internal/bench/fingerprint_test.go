package bench

import (
	"fmt"
	"testing"
)

func fpOpt() Options { return Options{MaxNodes: 2, Warmup: 1, Iters: 2} }

func planSpecs(t *testing.T, id string, opt Options, ov Overrides) []RunSpec {
	t.Helper()
	p, err := PlanScenario(id, opt, ov)
	if err != nil {
		t.Fatal(err)
	}
	return p.Specs
}

// TestFingerprintGolden pins the content addresses of representative
// specs. These values are the on-disk cache keys: a diff here means
// every existing run cache is invalidated. That is the correct outcome
// when simulation semantics changed (and the engine salt or an
// app/machine version was bumped), and a bug in the canonicalization
// otherwise — update the constants only in the first case.
func TestFingerprintGolden(t *testing.T) {
	cases := []struct {
		id   string
		ov   Overrides
		want string // fingerprint of the plan's first spec
	}{
		{"fig6a", Overrides{}, "f6ce17b23c93d7ef1bff2fe98c341dfe"},
		{"abl-chanapi", Overrides{}, "8d6fd6f70ea6a78c5ce1a58f46930201"},
		{"fig6a", Overrides{Machine: "perlmutter"}, "145066224a3e6f9fef4e1e1564e6121d"},
	}
	for _, c := range cases {
		specs := planSpecs(t, c.id, fpOpt(), c.ov)
		if got := specs[0].Fingerprint(); got != c.want {
			t.Errorf("%s (ov %+v): fingerprint = %s, want %s", c.id, c.ov, got, c.want)
		}
	}
}

// TestFingerprintStableAndDistinct checks the two sides of content
// addressing: recompiling the same plan reproduces the same keys, and
// every spec of a multi-figure sweep gets a distinct key.
func TestFingerprintStableAndDistinct(t *testing.T) {
	seen := map[string]string{}
	for _, id := range []string{"fig6a", "fig7b", "abl-chanapi"} {
		a := planSpecs(t, id, fpOpt(), Overrides{})
		b := planSpecs(t, id, fpOpt(), Overrides{})
		for i := range a {
			fa, fb := a[i].Fingerprint(), b[i].Fingerprint()
			if fa != fb {
				t.Fatalf("%s: fingerprint not reproducible: %s vs %s", a[i].Name(), fa, fb)
			}
			if len(fa) != 32 {
				t.Fatalf("%s: fingerprint %q is not 32 hex chars", a[i].Name(), fa)
			}
			if prev, dup := seen[fa]; dup {
				t.Fatalf("fingerprint collision: %s and %s both map to %s", prev, a[i].Name(), fa)
			}
			seen[fa] = a[i].Name()
		}
	}
}

// TestFingerprintSensitivity asserts that each cache-relevant input
// moves the key: jitter, machine override, and iteration counts.
func TestFingerprintSensitivity(t *testing.T) {
	base := planSpecs(t, "fig6a", fpOpt(), Overrides{})[0].Fingerprint()

	jopt := fpOpt()
	jopt.Jitter = 0.05
	if got := planSpecs(t, "fig6a", jopt, Overrides{})[0].Fingerprint(); got == base {
		t.Error("jitter change did not change the fingerprint")
	}
	if got := planSpecs(t, "fig6a", fpOpt(), Overrides{Machine: "perlmutter"})[0].Fingerprint(); got == base {
		t.Error("machine override did not change the fingerprint")
	}
	iopt := fpOpt()
	iopt.Iters = 3
	if got := planSpecs(t, "fig6a", iopt, Overrides{})[0].Fingerprint(); got == base {
		t.Error("iteration count change did not change the fingerprint")
	}
}

// TestFingerprintEngineSaltInvalidates proves the engine-version salt
// is live: the same spec under a bumped salt maps to a different key,
// so semantic engine changes orphan (rather than poison) old caches.
func TestFingerprintEngineSaltInvalidates(t *testing.T) {
	spec := planSpecs(t, "fig6a", fpOpt(), Overrides{})[0]
	a := spec.fingerprint("gat-engine-1")
	b := spec.fingerprint("gat-engine-2")
	if a == b {
		t.Fatal("engine salt bump did not change the fingerprint")
	}
	if spec.Fingerprint() != a {
		t.Fatal("Fingerprint() does not use the current sim.EngineVersion salt")
	}
}

// TestFingerprintTaperedProfileBumpIsScoped proves profile-version
// invalidation stays scoped: bumping a tapered profile's version moves
// exactly the keys of specs running on that profile, while specs on
// the untouched base profile keep their keys bit for bit — a fabric
// cost-model fix never orphans NIC-only cache entries.
func TestFingerprintTaperedProfileBumpIsScoped(t *testing.T) {
	summit := planSpecs(t, "fig6a", fpOpt(), Overrides{})[0]
	tapered := planSpecs(t, "fig6a", fpOpt(), Overrides{Machine: "summit-tapered-2x"})[0]
	if summit.MachineIdentity() != "summit@v1" {
		t.Fatalf("summit identity = %q", summit.MachineIdentity())
	}
	if tapered.MachineIdentity() != "summit-tapered-2x@v1" {
		t.Fatalf("tapered identity = %q", tapered.MachineIdentity())
	}
	if summit.Fingerprint() == tapered.Fingerprint() {
		t.Fatal("summit and summit-tapered-2x specs share a fingerprint")
	}

	// Simulate a version bump of the tapered profile: only the spec
	// whose machineID carries the bumped identity changes key.
	bumped := tapered
	bumped.machineID = "summit-tapered-2x@v2"
	if bumped.Fingerprint() == tapered.Fingerprint() {
		t.Fatal("tapered profile version bump did not change its fingerprint")
	}
	// The summit spec's canonical input never mentions the tapered
	// identity, so its key is untouched by construction — pin that the
	// identity really is the only delta between the two tapered keys.
	unbumped := bumped
	unbumped.machineID = tapered.MachineIdentity()
	if unbumped.Fingerprint() != tapered.Fingerprint() {
		t.Fatal("machineID is not the only fingerprint input that differed")
	}
	if summit.Fingerprint() != planSpecs(t, "fig6a", fpOpt(), Overrides{})[0].Fingerprint() {
		t.Fatal("summit fingerprint moved while only the tapered profile changed")
	}
}

// TestFingerprintScenarioVersion proves the scenario-version component
// is live and legacy-safe: a scenario at Version 0 hashes its plain
// name (the exact form pre-versioned caches used — pinned separately
// by TestFingerprintGolden), a versioned scenario hashes "name@vN",
// and bumping the version changes that scenario's keys only. This is
// what covers cost-model constants embedded in cell closures (e.g. the
// taper scenarios' fabric parameters), which no app or machine version
// can see.
func TestFingerprintScenarioVersion(t *testing.T) {
	s, err := ScenarioByName("jacobi-taper")
	if err != nil {
		t.Fatal(err)
	}
	if s.Version == 0 {
		t.Fatal("jacobi-taper embeds fabric parameters in its cells; it must carry a nonzero Version")
	}
	if got, want := s.Identity(), fmt.Sprintf("jacobi-taper@v%d", s.Version); got != want {
		t.Fatalf("Identity = %q, want %q", got, want)
	}
	fig6a, err := ScenarioByName("fig6a")
	if err != nil {
		t.Fatal(err)
	}
	if fig6a.Identity() != "fig6a" {
		t.Fatalf("version-0 identity = %q, want the plain legacy name", fig6a.Identity())
	}

	spec := planSpecs(t, "jacobi-taper", fpOpt(), Overrides{})[0]
	base := spec.Fingerprint()
	bumped := spec
	bumped.scenarioID = fmt.Sprintf("jacobi-taper@v%d", s.Version+1)
	if bumped.Fingerprint() == base {
		t.Fatal("scenario version bump did not change the fingerprint")
	}
	if planSpecs(t, "fig6a", fpOpt(), Overrides{})[0].Fingerprint() !=
		planSpecs(t, "fig6a", fpOpt(), Overrides{})[0].Fingerprint() {
		t.Fatal("unrelated scenario keys unstable")
	}
}

// TestTaperScenarioShapes pins the congestion scenarios' structure:
// the taper axis holds the machine size fixed while x sweeps the
// ratio, and their points carry the fabric congestion summary.
func TestTaperScenarioShapes(t *testing.T) {
	for _, id := range []string{"jacobi-taper", "minimd-taper"} {
		specs := planSpecs(t, id, fpOpt(), Overrides{})
		if len(specs) == 0 {
			t.Fatalf("%s: empty plan", id)
		}
		for _, s := range specs {
			if s.Nodes != specs[0].Nodes {
				t.Fatalf("%s: node count varies along the taper axis (%d vs %d)", id, s.Nodes, specs[0].Nodes)
			}
		}
		if specs[0].X != 1 {
			t.Fatalf("%s: first taper point x=%d, want 1 (the no-contention baseline)", id, specs[0].X)
		}
	}
}

// TestExecutionsCounter checks the run-counter hook: executing a spec
// bumps the process-wide counter by exactly one.
func TestExecutionsCounter(t *testing.T) {
	spec := planSpecs(t, "fig6a", fpOpt(), Overrides{})[0]
	before := Executions()
	spec.Execute()
	if got := Executions() - before; got != 1 {
		t.Fatalf("Executions advanced by %d, want 1", got)
	}
}
