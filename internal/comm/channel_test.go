package comm

import (
	"testing"
	"testing/quick"

	"gat/internal/netsim"
	"gat/internal/sim"
)

func testNet(e *sim.Engine, nodes int) *netsim.Network {
	cfg := netsim.Config{
		LatencyBase:         100,
		LatencyPerHop:       10,
		InjectionBW:         1e9,
		IntraNodeBW:         1e9,
		IntraNodeLatency:    50,
		GPUDirectOverhead:   5,
		RendezvousThreshold: 1000,
		PodSize:             2,
	}
	return netsim.New(e, cfg, nodes)
}

func TestChannelSendThenRecv(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, 2)
	ch := NewChannel(n, Endpoint{Proc: 0, Node: 0}, Endpoint{Proc: 1, Node: 1})
	var sendAt, recvAt sim.Time = -1, -1
	ch.Send(0, 7, 500, sim.FiredSignal(), func() { sendAt = e.Now() })
	e.Schedule(50, func() {
		ch.Recv(1, 7, func() { recvAt = e.Now() })
	})
	e.Run()
	// Matched at 50; eager (500 < 1000): overhead 5, tx 55..555,
	// rx 165..665.
	if recvAt != 665 || sendAt != 665 {
		t.Fatalf("sendAt=%v recvAt=%v, want 665/665", sendAt, recvAt)
	}
}

func TestChannelRecvThenSend(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, 2)
	ch := NewChannel(n, Endpoint{Proc: 0, Node: 0}, Endpoint{Proc: 1, Node: 1})
	var recvAt sim.Time = -1
	ch.Recv(1, 3, func() { recvAt = e.Now() })
	if ch.PendingRecvs() != 1 {
		t.Fatalf("pending recvs = %d, want 1", ch.PendingRecvs())
	}
	e.Schedule(100, func() {
		ch.Send(0, 3, 500, sim.FiredSignal(), nil)
	})
	e.Run()
	if recvAt != 715 { // matched at 100: 5 + 500 tx + 110 lat + rx
		t.Fatalf("recvAt = %v, want 715", recvAt)
	}
	if ch.PendingRecvs() != 0 || ch.PendingSends() != 0 {
		t.Fatal("pending counts should drain to zero")
	}
}

func TestChannelTagMatching(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, 2)
	ch := NewChannel(n, Endpoint{Proc: 0, Node: 0}, Endpoint{Proc: 1, Node: 1})
	var got []int
	ch.Recv(1, 2, func() { got = append(got, 2) })
	ch.Recv(1, 1, func() { got = append(got, 1) })
	// Send tag 1 first: only the tag-1 recv completes first even though
	// the tag-2 recv was posted earlier.
	ch.Send(0, 1, 100, sim.FiredSignal(), nil)
	e.Schedule(5000, func() { ch.Send(0, 2, 100, sim.FiredSignal(), nil) })
	e.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("completion order = %v, want [1 2]", got)
	}
}

func TestChannelBidirectional(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, 2)
	ch := NewChannel(n, Endpoint{Proc: 0, Node: 0}, Endpoint{Proc: 1, Node: 1})
	done := 0
	ch.Send(0, 1, 100, sim.FiredSignal(), nil)
	ch.Recv(1, 1, func() { done++ })
	ch.Send(1, 1, 100, sim.FiredSignal(), nil)
	ch.Recv(0, 1, func() { done++ })
	e.Run()
	if done != 2 {
		t.Fatalf("bidirectional completions = %d, want 2", done)
	}
	if ch.Completed() != 2 {
		t.Fatalf("Completed = %d, want 2", ch.Completed())
	}
}

func TestChannelDataGatedOnReady(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, 2)
	ch := NewChannel(n, Endpoint{Proc: 0, Node: 0}, Endpoint{Proc: 1, Node: 1})
	packed := sim.NewSignal()
	var recvAt sim.Time
	ch.Recv(1, 0, func() { recvAt = e.Now() })
	ch.Send(0, 0, 100, packed, nil)
	e.Schedule(1000, func() { packed.Fire(e) })
	e.Run()
	if recvAt != 1000+5+100+110 {
		t.Fatalf("recvAt = %v, want 1215 (gated on packing)", recvAt)
	}
}

func TestChannelSameProcPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("same-proc channel did not panic")
		}
	}()
	e := sim.NewEngine()
	NewChannel(testNet(e, 2), Endpoint{Proc: 0}, Endpoint{Proc: 0})
}

func TestChannelForeignProcPanics(t *testing.T) {
	e := sim.NewEngine()
	ch := NewChannel(testNet(e, 2), Endpoint{Proc: 0, Node: 0}, Endpoint{Proc: 1, Node: 1})
	defer func() {
		if recover() == nil {
			t.Error("foreign proc did not panic")
		}
	}()
	ch.Send(5, 0, 10, sim.FiredSignal(), nil)
}

func TestMessagingAPISlowerThanChannel(t *testing.T) {
	// The metadata round of the GPU Messaging API must cost extra
	// latency relative to the Channel API.
	channelTime := func() sim.Time {
		e := sim.NewEngine()
		n := testNet(e, 2)
		ch := NewChannel(n, Endpoint{Proc: 0, Node: 0}, Endpoint{Proc: 1, Node: 1})
		var at sim.Time
		ch.Recv(1, 0, func() { at = e.Now() })
		ch.Send(0, 0, 500, sim.FiredSignal(), nil)
		e.Run()
		return at
	}()
	messagingTime := func() sim.Time {
		e := sim.NewEngine()
		n := testNet(e, 2)
		var at sim.Time
		MessagingSend(n, DefaultMessagingConfig(),
			Endpoint{Proc: 0, Node: 0}, Endpoint{Proc: 1, Node: 1},
			500, sim.FiredSignal(), func() { at = e.Now() })
		e.Run()
		return at
	}()
	if messagingTime <= channelTime {
		t.Fatalf("messaging API (%v) should be slower than channel API (%v)",
			messagingTime, channelTime)
	}
}

// Property: for any interleaving of N sends and N recvs with matching
// tags, every recv completes exactly once.
func TestChannelMatchingProperty(t *testing.T) {
	f := func(order []bool, n uint8) bool {
		count := int(n)%8 + 1
		e := sim.NewEngine()
		net := testNet(e, 2)
		ch := NewChannel(net, Endpoint{Proc: 0, Node: 0}, Endpoint{Proc: 1, Node: 1})
		completed := make(map[int]int)
		sends, recvs := 0, 0
		step := 0
		post := func(sendNext bool) {
			if sendNext && sends < count {
				tag := sends
				ch.Send(0, tag, 64, sim.FiredSignal(), nil)
				sends++
			} else if recvs < count {
				tag := recvs
				ch.Recv(1, tag, func() { completed[tag]++ })
				recvs++
			}
		}
		for sends < count || recvs < count {
			sendNext := sends < count
			if recvs < count && step < len(order) && !order[step] {
				sendNext = false
			}
			post(sendNext)
			step++
		}
		e.Run()
		if len(completed) != count {
			return false
		}
		for _, c := range completed {
			if c != 1 {
				return false
			}
		}
		return ch.PendingSends() == 0 && ch.PendingRecvs() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
