package comm

import (
	"gat/internal/netsim"
	"gat/internal/sim"
)

// MessagingConfig parameterizes the GPU Messaging API, the older of the
// two Charm++ GPU-aware mechanisms (§II-B): before the data can move, a
// small metadata message travels to the receiver and invokes a "post
// entry method" that tells the runtime where the destination buffer is.
type MessagingConfig struct {
	// MetadataBytes is the size of the metadata message.
	MetadataBytes int64
	// PostCost is the host time consumed by the post entry method.
	PostCost sim.Time
}

// DefaultMessagingConfig matches the Charm++ implementation's small
// metadata envelope and post-entry handling cost.
func DefaultMessagingConfig() MessagingConfig {
	return MessagingConfig{MetadataBytes: 512, PostCost: 2 * sim.Microsecond}
}

// MessagingSend transfers a device buffer using the GPU Messaging API:
// metadata message, post entry method at the receiver, then the GPU data
// transfer. done runs when the data has arrived at the receiver. The
// extra metadata round makes this measurably slower than the Channel
// API for latency-sensitive messages — the gap that motivated the
// Channel API's development.
func MessagingSend(net *netsim.Network, cfg MessagingConfig, src, dst Endpoint, bytes int64, ready *sim.Signal, done func()) {
	eng := net.Engine()
	meta := net.Transfer(src.Node, dst.Node, cfg.MetadataBytes, ready)
	posted := netsim.After(eng, meta, cfg.PostCost)
	arrived := net.TransferGPUDirect(src.Node, dst.Node, bytes, posted)
	arrived.OnFire(eng, func() {
		if done != nil {
			eng.Schedule(0, done)
		}
	})
}
