package comm

import (
	"testing"

	"gat/internal/sim"
)

func TestMessagingSendDelivers(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, 2)
	var at sim.Time
	MessagingSend(n, DefaultMessagingConfig(),
		Endpoint{Proc: 0, Node: 0}, Endpoint{Proc: 1, Node: 1},
		4096, sim.FiredSignal(), func() { at = e.Now() })
	e.Run()
	if at <= 0 {
		t.Fatal("messaging send never delivered")
	}
}

func TestMessagingSendGatedOnReady(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, 2)
	ready := sim.NewSignal()
	var at sim.Time
	MessagingSend(n, DefaultMessagingConfig(),
		Endpoint{Proc: 0, Node: 0}, Endpoint{Proc: 1, Node: 1},
		4096, ready, func() { at = e.Now() })
	e.Schedule(10000, func() { ready.Fire(e) })
	e.Run()
	if at <= 10000 {
		t.Fatalf("delivery at %v, before the data was ready", at)
	}
}

func TestMessagingPostCostAddsLatency(t *testing.T) {
	run := func(postCost sim.Time) sim.Time {
		e := sim.NewEngine()
		n := testNet(e, 2)
		cfg := DefaultMessagingConfig()
		cfg.PostCost = postCost
		var at sim.Time
		MessagingSend(n, cfg,
			Endpoint{Proc: 0, Node: 0}, Endpoint{Proc: 1, Node: 1},
			4096, sim.FiredSignal(), func() { at = e.Now() })
		e.Run()
		return at
	}
	cheap, costly := run(0), run(50*sim.Microsecond)
	if costly-cheap < 50*sim.Microsecond {
		t.Fatalf("post cost not reflected: %v vs %v", cheap, costly)
	}
}

func TestMessagingNilCallback(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, 2)
	MessagingSend(n, DefaultMessagingConfig(),
		Endpoint{Proc: 0, Node: 0}, Endpoint{Proc: 1, Node: 1},
		64, sim.FiredSignal(), nil)
	e.Run() // must not panic
}
