// Package comm implements GPU-aware communication primitives on top of
// the network model: the Channel API (two-sided sends/receives of device
// buffers with completion callbacks, the mechanism this paper uses for
// Charm-D) and the older GPU Messaging API (metadata message + post
// entry method, kept for comparison).
//
// Both APIs mirror the Charm++/UCX design described in §II-B: a channel
// connects a pair of endpoints; send and recv calls are matched by tag;
// once both sides have posted, the data moves GPU-to-GPU over the
// GPUDirect path and each side's callback fires on completion.
package comm

import (
	"fmt"

	"gat/internal/netsim"
	"gat/internal/sim"
)

// Endpoint identifies one side of a channel: a global process id and the
// node it lives on.
type Endpoint struct {
	Proc int
	Node int
}

type pendingSend struct {
	bytes int64
	ready *sim.Signal
	done  func()
}

type pendingRecv struct {
	done func()
}

type matchKey struct {
	dstProc int
	tag     int
}

// Channel is a point-to-point GPU-aware communication channel between
// two endpoints. Sends and receives are matched by (destination, tag);
// tags carry the iteration number in Jacobi3D, providing the same
// ordering guarantee as SDAG reference numbers.
type Channel struct {
	net  *netsim.Network
	a, b Endpoint

	sends map[matchKey][]*pendingSend
	recvs map[matchKey][]*pendingRecv

	sent, received uint64
}

// NewChannel creates a channel between endpoints a and b.
func NewChannel(net *netsim.Network, a, b Endpoint) *Channel {
	if a.Proc == b.Proc {
		panic("comm: channel endpoints must differ")
	}
	return &Channel{
		net:   net,
		a:     a,
		b:     b,
		sends: make(map[matchKey][]*pendingSend),
		recvs: make(map[matchKey][]*pendingRecv),
	}
}

func (c *Channel) peer(proc int) Endpoint {
	switch proc {
	case c.a.Proc:
		return c.b
	case c.b.Proc:
		return c.a
	default:
		panic(fmt.Sprintf("comm: proc %d is not an endpoint of this channel", proc))
	}
}

func (c *Channel) endpoint(proc int) Endpoint {
	if proc == c.a.Proc {
		return c.a
	}
	return c.b
}

// Send posts a send of bytes from endpoint proc. The data is on the
// device and becomes valid when ready fires (e.g. after the packing
// kernel). done runs when the transfer completes at the receiver, at
// which point the send buffer is reusable.
func (c *Channel) Send(proc, tag int, bytes int64, ready *sim.Signal, done func()) {
	dst := c.peer(proc)
	key := matchKey{dstProc: dst.Proc, tag: tag}
	if rs := c.recvs[key]; len(rs) > 0 {
		r := rs[0]
		c.recvs[key] = rs[1:]
		c.start(proc, dst.Proc, bytes, ready, done, r.done)
		return
	}
	c.sends[key] = append(c.sends[key], &pendingSend{bytes: bytes, ready: ready, done: done})
}

// Recv posts a receive at endpoint proc. done runs when the matching
// send's data has fully arrived in the destination device buffer.
func (c *Channel) Recv(proc, tag int, done func()) {
	key := matchKey{dstProc: c.endpoint(proc).Proc, tag: tag}
	if ss := c.sends[key]; len(ss) > 0 {
		s := ss[0]
		c.sends[key] = ss[1:]
		c.start(c.peer(proc).Proc, proc, s.bytes, s.ready, s.done, done)
		return
	}
	c.recvs[key] = append(c.recvs[key], &pendingRecv{done: done})
}

// start moves the data once both sides have posted.
func (c *Channel) start(srcProc, dstProc int, bytes int64, ready *sim.Signal, sendDone, recvDone func()) {
	src, dst := c.endpoint(srcProc), c.endpoint(dstProc)
	arrived := c.net.TransferGPUDirect(src.Node, dst.Node, bytes, ready)
	eng := c.net.Engine()
	arrived.OnFire(eng, func() {
		c.sent++
		c.received++
		if sendDone != nil {
			eng.Schedule(0, sendDone)
		}
		if recvDone != nil {
			eng.Schedule(0, recvDone)
		}
	})
}

// Completed returns the number of completed sends over this channel.
func (c *Channel) Completed() uint64 { return c.sent }

// PendingSends returns the number of unmatched sends (for tests and
// quiescence checks).
func (c *Channel) PendingSends() int {
	n := 0
	for _, s := range c.sends {
		n += len(s)
	}
	return n
}

// PendingRecvs returns the number of unmatched receives.
func (c *Channel) PendingRecvs() int {
	n := 0
	for _, r := range c.recvs {
		n += len(r)
	}
	return n
}
