package timeline

import (
	"sort"
	"testing"
	"testing/quick"

	"gat/internal/sim"
)

func TestMergeBasic(t *testing.T) {
	got := Merge([]Interval{{5, 10}, {1, 3}, {2, 6}, {20, 25}})
	want := []Interval{{1, 10}, {20, 25}}
	if len(got) != len(want) {
		t.Fatalf("merge = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge = %v, want %v", got, want)
		}
	}
}

func TestMergeTouchingIntervalsCoalesce(t *testing.T) {
	got := Merge([]Interval{{1, 3}, {3, 5}})
	if len(got) != 1 || got[0] != (Interval{1, 5}) {
		t.Fatalf("merge = %v", got)
	}
}

func TestMergeEmpty(t *testing.T) {
	if Merge(nil) != nil {
		t.Fatal("merge(nil) should be nil")
	}
}

func TestIntersectBasic(t *testing.T) {
	a := []Interval{{0, 10}, {20, 30}}
	b := []Interval{{5, 25}}
	got := Intersect(a, b)
	want := []Interval{{5, 10}, {20, 25}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("intersect = %v, want %v", got, want)
	}
}

func TestIntersectDisjoint(t *testing.T) {
	if got := Intersect([]Interval{{0, 5}}, []Interval{{6, 9}}); got != nil {
		t.Fatalf("disjoint intersect = %v", got)
	}
}

// Property: |A ∩ B| <= min(|A|, |B|) and merge is idempotent.
func TestIntervalAlgebraProperty(t *testing.T) {
	gen := func(raw []uint8) []Interval {
		var ivs []Interval
		for i := 0; i+1 < len(raw); i += 2 {
			lo := sim.Time(raw[i])
			hi := lo + sim.Time(raw[i+1]%32) + 1
			ivs = append(ivs, Interval{lo, hi})
		}
		return ivs
	}
	f := func(ra, rb []uint8) bool {
		a, b := Merge(gen(ra)), Merge(gen(rb))
		inter := Intersect(a, b)
		if total(inter) > total(a) || total(inter) > total(b) {
			return false
		}
		// Merge idempotence.
		am := Merge(a)
		if total(am) != total(a) || len(am) != len(a) {
			return false
		}
		// Merged intervals are sorted and disjoint.
		if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i].Start < a[j].Start }) {
			return false
		}
		for i := 1; i < len(a); i++ {
			if a[i].Start <= a[i-1].End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeOverlap(t *testing.T) {
	tr := sim.NewTracer()
	// GPU compute busy 0..100; NIC busy 50..150: 50 hidden of 100 comm.
	tr.Add(sim.Span{Resource: "node0/gpu0", Label: "update", Start: 0, End: 100})
	tr.Add(sim.Span{Resource: "nic0/tx", Label: "xfer", Start: 50, End: 150})
	a := Analyze(tr, 200)
	if a.Compute != 100 || a.Comm != 100 || a.Hidden != 50 {
		t.Fatalf("compute=%v comm=%v hidden=%v", a.Compute, a.Comm, a.Hidden)
	}
	if f := a.OverlapFraction(); f != 0.5 {
		t.Fatalf("overlap = %v, want 0.5", f)
	}
	if u := a.ComputeUtilization(); u != 0.5 {
		t.Fatalf("compute util = %v, want 0.5", u)
	}
}

func TestAnalyzeClassification(t *testing.T) {
	tr := sim.NewTracer()
	tr.Add(sim.Span{Resource: "node0/gpu1/d2h", Label: "xfer", Start: 0, End: 10})
	tr.Add(sim.Span{Resource: "node0/intra", Label: "xfer", Start: 0, End: 10})
	tr.Add(sim.Span{Resource: "pe3", Label: "entry", Start: 0, End: 10}) // neither
	a := Analyze(tr, 10)
	if a.Compute != 0 {
		t.Fatalf("compute = %v, want 0", a.Compute)
	}
	if a.Comm != 10 { // two comm resources merged over the same window
		t.Fatalf("comm = %v, want 10", a.Comm)
	}
}

func TestAnalyzeEmptyTracer(t *testing.T) {
	a := Analyze(sim.NewTracer(), 100)
	if a.OverlapFraction() != 0 || a.Compute != 0 {
		t.Fatal("empty tracer should produce zero analysis")
	}
}
