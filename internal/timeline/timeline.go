// Package timeline analyzes tracer output: per-resource utilization and
// the metric at the heart of the paper — how much communication time is
// hidden behind computation. It is the simulator's substitute for
// eyeballing Nsight Systems timelines (§III-C).
package timeline

import (
	"sort"
	"strings"

	"gat/internal/sim"
)

// Interval is a half-open busy interval [Start, End).
type Interval struct {
	Start, End sim.Time
}

// Analysis summarizes a run's timeline.
type Analysis struct {
	// Horizon is the run duration used for utilization.
	Horizon sim.Time
	// BusyByResource is total busy time per resource.
	BusyByResource map[string]sim.Time
	// Compute is the merged busy time of GPU compute engines.
	Compute sim.Time
	// Comm is the merged busy time of communication resources (NIC
	// ports, intra-node links, DMA engines).
	Comm sim.Time
	// Hidden is the portion of Comm that coincides with Compute —
	// communication overlapped with computation.
	Hidden sim.Time
}

// OverlapFraction is Hidden/Comm: 1.0 means all communication was
// hidden behind computation, 0 means fully exposed.
func (a *Analysis) OverlapFraction() float64 {
	if a.Comm == 0 {
		return 0
	}
	return float64(a.Hidden) / float64(a.Comm)
}

// ComputeUtilization is merged compute time over the horizon.
func (a *Analysis) ComputeUtilization() float64 {
	if a.Horizon == 0 {
		return 0
	}
	return float64(a.Compute) / float64(a.Horizon)
}

// classify decides whether a span is computation, communication, or
// neither, from the resource naming conventions of the machine model.
func classify(s sim.Span) (compute, comm bool) {
	r := s.Resource
	switch {
	case strings.Contains(r, "/d2h"), strings.Contains(r, "/h2d"):
		return false, true
	case strings.Contains(r, "nic"), strings.Contains(r, "/intra"):
		return false, true
	case strings.Contains(r, "/gpu"):
		return true, false
	default:
		return false, false
	}
}

// Analyze builds an analysis from tracer spans over the given horizon.
func Analyze(tr *sim.Tracer, horizon sim.Time) *Analysis {
	a := &Analysis{Horizon: horizon, BusyByResource: tr.BusyByResource()}
	var computeIv, commIv []Interval
	for _, s := range tr.Spans {
		iv := Interval{Start: s.Start, End: s.End}
		if iv.End <= iv.Start {
			continue
		}
		comp, comm := classify(s)
		if comp {
			computeIv = append(computeIv, iv)
		}
		if comm {
			commIv = append(commIv, iv)
		}
	}
	computeIv = Merge(computeIv)
	commIv = Merge(commIv)
	a.Compute = total(computeIv)
	a.Comm = total(commIv)
	a.Hidden = total(Intersect(computeIv, commIv))
	return a
}

// Merge sorts and coalesces overlapping or touching intervals.
func Merge(ivs []Interval) []Interval {
	if len(ivs) == 0 {
		return nil
	}
	sorted := append([]Interval(nil), ivs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].End < sorted[j].End
	})
	out := sorted[:1]
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// Intersect returns the pairwise intersection of two merged interval
// lists.
func Intersect(a, b []Interval) []Interval {
	var out []Interval
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := a[i].Start
		if b[j].Start > lo {
			lo = b[j].Start
		}
		hi := a[i].End
		if b[j].End < hi {
			hi = b[j].End
		}
		if lo < hi {
			out = append(out, Interval{Start: lo, End: hi})
		}
		if a[i].End < b[j].End {
			i++
		} else {
			j++
		}
	}
	return out
}

func total(ivs []Interval) sim.Time {
	var t sim.Time
	for _, iv := range ivs {
		t += iv.End - iv.Start
	}
	return t
}
