// Parallel-in-run benchmarks: the conservative PDES layer's hot paths.
//
// BenchmarkPDESWindowMerge measures the cross-shard machinery itself —
// a ping chain that crosses the shard boundary every hop, so every
// window executes the full barrier cycle: outbox collection, the
// deterministic (time, source, seq) merge sort, sorted injection and
// the inbox drain. BenchmarkJacobiStepSharded is the end-to-end
// counterpart of BenchmarkJacobiStep for the LP-model path: one timed
// exascale-model iteration across 64 dragonfly nodes on 4 shards.
//
// make bench records both into BENCH_PR8.json alongside the engine
// benchmarks.
package gat

import (
	"testing"

	"gat/internal/jacobi"
	"gat/internal/machine"
	"gat/internal/pdes"
	"gat/internal/sim"
)

// BenchmarkPDESWindowMerge drives one message back and forth between
// two LPs pinned to different shards, with the delay exactly at the
// lookahead so each hop lands in the next window. Per op: one window
// barrier — collect, sort, inject, drain — the fixed cost every
// cross-shard message pays.
func BenchmarkPDESWindowMerge(b *testing.B) {
	const lookahead = 100 * sim.Nanosecond
	hops := b.N
	r := pdes.MustNew(pdes.Config{
		LPs: 2, Shards: 2, Lookahead: lookahead,
		Handler: func(ctx *pdes.Ctx, m pdes.Message) {
			if m.Data <= 0 {
				return
			}
			ctx.Send(1-ctx.LP(), lookahead, 0, m.Data-1)
		},
	})
	r.Post(0, 0, 0, int64(hops))
	b.ReportAllocs()
	b.ResetTimer()
	r.Run()
}

// BenchmarkJacobiStepSharded measures one timed iteration of the
// exascale LP model (64 perlmutter-dragonfly nodes = 4 switch groups,
// 4 shards, overlapped schedule). b.N is spread over runs of
// exaBenchIters iterations, mirroring BenchmarkJacobiStep's sweep
// shape: one short-lived run per data point.
func BenchmarkJacobiStepSharded(b *testing.B) {
	const exaBenchIters = 128
	const nodes = 64
	p, err := machine.ProfileByName("perlmutter-dragonfly")
	if err != nil {
		b.Fatal(err)
	}
	cfg := p.Build(nodes)
	opts := jacobi.ExaOpts{Shards: 4, Overlap: true}
	b.ReportAllocs()
	b.ResetTimer()
	for n := b.N; n > 0; n -= exaBenchIters {
		iters := exaBenchIters
		if n < iters {
			iters = n
		}
		jc := jacobi.Config{
			Global: jacobi.WeakGlobal([3]int{96, 96, 96}, nodes),
			Warmup: 1, Iters: iters,
		}
		jacobi.RunExa(cfg, jc, opts)
	}
}
