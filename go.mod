module gat

go 1.24
