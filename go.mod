module gat

go 1.23
